package router

import (
	"sync"
	"time"
)

// Backend health states. The state machine the router runs per
// backend is
//
//	healthy → degraded → ejected → probing → healthy
//	                        ↑         |
//	                        └─ probe fails
//
// healthy and degraded are routable (a degraded backend keeps its
// ring rank so passive outcomes can resolve it either way, with
// hedging covering its latency); ejected and probing are not — their keys
// remap to the next replica on the ring until the backend earns its
// way back with RiseThreshold consecutive probe successes.
const (
	StateHealthy  = "healthy"
	StateDegraded = "degraded"
	StateEjected  = "ejected"
	StateProbing  = "probing"
)

// HealthConfig parameterizes the per-backend health state machine and
// the active prober.
type HealthConfig struct {
	// ProbeInterval is how often the active checker probes every
	// backend's /healthz (default 2s; negative disables the background
	// loop — tests drive ProbeNow instead).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// FallThreshold ejects a backend after this many consecutive
	// failures, active probes and passive request outcomes combined
	// (default 3). The first failure already moves healthy → degraded.
	FallThreshold int
	// RiseThreshold is the consecutive probe successes a probing
	// backend needs to return to healthy (default 2).
	RiseThreshold int
	// EjectCooldown is how long an ejected backend sits out before the
	// checker starts probing it again (default 5s).
	EjectCooldown time.Duration
}

func (c *HealthConfig) fillDefaults() {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FallThreshold <= 0 {
		c.FallThreshold = 3
	}
	if c.RiseThreshold <= 0 {
		c.RiseThreshold = 2
	}
	if c.EjectCooldown <= 0 {
		c.EjectCooldown = 5 * time.Second
	}
}

// HealthStatus is one backend's exported health entry (/healthz and
// /metricz).
type HealthStatus struct {
	State string `json:"state"`
	// ConsecutiveFails is the current failure streak feeding the fall
	// threshold.
	ConsecutiveFails int `json:"consecutive_fails,omitempty"`
	// Ejections counts entries into the ejected state over the
	// router's lifetime.
	Ejections int64 `json:"ejections,omitempty"`
}

// healthTracker holds the per-backend state machines. Observations
// come from two directions — the active /healthz prober and passive
// request outcomes (a failed or hedged-past attempt is evidence too) —
// and both feed the same streak counters.
type healthTracker struct {
	cfg HealthConfig
	now func() time.Time

	// onTransition observes state changes as (backend, from, to),
	// invoked with mu released.
	onTransition func(backend, from, to string)

	mu      sync.Mutex
	entries map[string]*healthEntry
}

type healthEntry struct {
	state     string
	fails     int // consecutive failures (any source)
	rises     int // consecutive probe successes while probing
	ejectedAt time.Time
	ejections int64
}

func newHealthTracker(cfg HealthConfig, names []string) *healthTracker {
	cfg.fillDefaults()
	t := &healthTracker{
		cfg:     cfg,
		now:     time.Now,
		entries: make(map[string]*healthEntry, len(names)),
	}
	for _, n := range names {
		t.entries[n] = &healthEntry{state: StateHealthy}
	}
	return t
}

type healthTransition struct{ backend, from, to string }

func (t *healthTracker) notify(ts []healthTransition) {
	if t.onTransition == nil {
		return
	}
	for _, tr := range ts {
		t.onTransition(tr.backend, tr.from, tr.to)
	}
}

// observe folds one outcome (probe or request) into a backend's state
// machine.
func (t *healthTracker) observe(name string, ok bool) {
	var ts []healthTransition
	t.mu.Lock()
	e := t.entries[name]
	if e == nil {
		t.mu.Unlock()
		return
	}
	from := e.state
	if ok {
		switch e.state {
		case StateHealthy:
			e.fails = 0
		case StateDegraded:
			e.fails = 0
			e.state = StateHealthy
		case StateProbing:
			e.rises++
			if e.rises >= t.cfg.RiseThreshold {
				e.state = StateHealthy
				e.fails, e.rises = 0, 0
			}
		case StateEjected:
			// A stale completion from before the ejection; ignore.
		}
	} else {
		switch e.state {
		case StateHealthy, StateDegraded:
			e.fails++
			if e.fails >= t.cfg.FallThreshold {
				e.state = StateEjected
				e.ejectedAt = t.now()
				e.ejections++
			} else {
				e.state = StateDegraded
			}
		case StateProbing:
			// One failed probe re-ejects; the cooldown restarts.
			e.state = StateEjected
			e.ejectedAt = t.now()
			e.ejections++
			e.rises = 0
		case StateEjected:
		}
	}
	if e.state != from {
		ts = append(ts, healthTransition{name, from, e.state})
	}
	t.mu.Unlock()
	t.notify(ts)
}

// suspect folds in soft evidence against a backend — a lost hedge
// race. A hedge win proves the replica was faster, not that the
// primary is down (during cache warmup the replica may simply have
// had the key cached), so suspicion degrades the backend and primes
// the failure streak up to one below the fall threshold but never
// ejects by itself; one subsequent hard failure (an explicit error or
// a failed probe) confirms and ejects, while one success clears it.
func (t *healthTracker) suspect(name string) {
	var ts []healthTransition
	t.mu.Lock()
	e := t.entries[name]
	if e == nil {
		t.mu.Unlock()
		return
	}
	if e.state == StateHealthy || e.state == StateDegraded {
		from := e.state
		if e.fails < t.cfg.FallThreshold-1 {
			e.fails++
		}
		e.state = StateDegraded
		if e.state != from {
			ts = append(ts, healthTransition{name, from, e.state})
		}
	}
	t.mu.Unlock()
	t.notify(ts)
}

// routable reports whether requests may be sent to the backend.
func (t *healthTracker) routable(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[name]
	return e != nil && (e.state == StateHealthy || e.state == StateDegraded)
}

// state returns the backend's current state ("" if unknown).
func (t *healthTracker) state(name string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.entries[name]; e != nil {
		return e.state
	}
	return ""
}

// beginProbes moves every ejected backend whose cooldown has elapsed
// into probing and returns the set of backends the checker should
// probe this round (probing backends included: they keep getting
// probed until they rise or fall). Routable backends are probed too —
// that is how a quietly sick backend degrades without waiting for a
// request to hit it.
func (t *healthTracker) beginProbes() []string {
	var ts []healthTransition
	t.mu.Lock()
	now := t.now()
	out := make([]string, 0, len(t.entries))
	for name, e := range t.entries {
		if e.state == StateEjected && now.Sub(e.ejectedAt) >= t.cfg.EjectCooldown {
			e.state = StateProbing
			e.rises = 0
			ts = append(ts, healthTransition{name, StateEjected, StateProbing})
		}
		if e.state != StateEjected {
			out = append(out, name)
		}
	}
	t.mu.Unlock()
	t.notify(ts)
	return out
}

// snapshot exports every backend's health entry.
func (t *healthTracker) snapshot() map[string]HealthStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]HealthStatus, len(t.entries))
	for name, e := range t.entries {
		out[name] = HealthStatus{State: e.state, ConsecutiveFails: e.fails, Ejections: e.ejections}
	}
	return out
}
