package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/svcobs"
)

// Config parameterizes a Router. The zero value is usable: defaults
// fill in NewRouter.
type Config struct {
	// VNodes is the virtual-node count per backend on the hash ring
	// (default DefaultVNodes).
	VNodes int

	// HedgeAfter is the hedge delay used before a backend has latency
	// history (default 25ms). Once a backend's rolling window has
	// samples, its p95 replaces this, clamped to [HedgeMin, HedgeMax].
	HedgeAfter time.Duration
	// HedgeMin / HedgeMax clamp the adaptive hedge delay (defaults
	// 2ms / 2s).
	HedgeMin time.Duration
	HedgeMax time.Duration
	// DisableHedging turns hedged requests off; requests then wait for
	// the primary alone (failover still applies on explicit failure).
	// Hedging covers async submissions too: a submission is idempotent
	// across replicas (each backend dedupes on the canonical hash), so
	// the hedge costs at most one duplicate run — the same price sync
	// hedging pays — and keeps submit latency bounded when the primary
	// hangs.
	DisableHedging bool

	// RequestTimeout bounds one routed request end to end, hedges and
	// failovers included (default 30s).
	RequestTimeout time.Duration

	// StaleEntries sizes the stale-result cache backing degraded mode
	// (default 512 entries; 0 also means 512, <0 disables stale
	// serving).
	StaleEntries int

	// LoadBoundFactor demotes a key's primary behind the next replica
	// when the primary's inflight count exceeds factor × the mean
	// inflight across routable backends (bounded-load consistent
	// hashing). Default 2.0; <0 disables the bound.
	LoadBoundFactor float64

	// Health parameterizes the per-backend health state machine.
	Health HealthConfig

	// Spans enables per-request trace capture, retrievable at GET
	// /v1/traces/{id}.
	Spans bool
	// TraceRetention bounds the retained trace docs (default 256).
	TraceRetention int

	// Logger receives structured routing events (nil disables).
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 25 * time.Millisecond
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 2 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.StaleEntries == 0 {
		c.StaleEntries = 512
	}
	if c.LoadBoundFactor == 0 {
		c.LoadBoundFactor = 2.0
	}
	if c.TraceRetention <= 0 {
		c.TraceRetention = 256
	}
	c.Health.fillDefaults()
}

// Counters is the router's monotonic counter snapshot (see /metricz).
type Counters struct {
	// Routed counts requests dispatched to at least one backend.
	Routed int64 `json:"routed"`
	// Hedged counts requests that launched a second (hedge) attempt;
	// HedgeWins counts those where the hedge answered first.
	Hedged    int64 `json:"hedged"`
	HedgeWins int64 `json:"hedge_wins"`
	// Failovers counts requests served by a backend other than their
	// ring primary because the primary was unroutable or failed (hedge
	// wins are not failovers).
	Failovers int64 `json:"failovers"`
	// Ejections counts backend transitions into the ejected state.
	Ejections int64 `json:"ejections"`
	// StaleServed counts degraded-mode responses from the stale cache;
	// Unroutable counts requests that found no live replica at all
	// (whether or not stale data saved them).
	StaleServed int64 `json:"stale_served"`
	Unroutable  int64 `json:"unroutable"`
	// LoadShifts counts bounded-load demotions of an overloaded
	// primary.
	LoadShifts int64 `json:"load_shifts"`
}

// Result is the outcome of one routed request.
type Result struct {
	// Doc is the job status document (nil when Err is set and no stale
	// fallback existed).
	Doc *serve.JobStatus
	// Backend names the backend that answered ("" for stale serves
	// and total failures).
	Backend string
	// Code is the HTTP status the router should relay (200/202 on
	// success, the backend's refusal code, or 503).
	Code int
	// Stale marks a degraded-mode response served from the stale
	// cache after every replica failed.
	Stale bool
	// Hedged / HedgeWin report whether a hedge launched and whether it
	// won.
	Hedged   bool
	HedgeWin bool
	Err      error
}

// Router fronts a fixed set of jaded backends: consistent-hash
// placement, health checking, hedged failover, and stale-serving
// degradation. Create with NewRouter, stop with Close.
type Router struct {
	cfg      Config
	ring     *Ring
	backends map[string]Backend
	health   *healthTracker

	stale  *serve.Cache // spec hash → result bytes (degraded mode)
	owners *serve.Cache // async job ID → backend name

	mu       sync.Mutex
	counters Counters
	inflight map[string]int
	windows  map[string]*rollingWindow

	traceMu    sync.Mutex
	traces     map[string]*svcobs.Doc
	traceOrder []string

	stop     chan struct{}
	checker  sync.WaitGroup
	stopOnce sync.Once
}

// NewRouter builds a router over the given backends (at least one).
// The ring is a pure function of the backend names, so a restarted
// router maps keys identically.
func NewRouter(cfg Config, backends ...Backend) (*Router, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("router: no backends")
	}
	cfg.fillDefaults()
	names := make([]string, 0, len(backends))
	byName := make(map[string]Backend, len(backends))
	for _, b := range backends {
		if _, dup := byName[b.Name()]; dup {
			return nil, fmt.Errorf("router: duplicate backend name %q", b.Name())
		}
		byName[b.Name()] = b
		names = append(names, b.Name())
	}
	rt := &Router{
		cfg:      cfg,
		ring:     NewRing(cfg.VNodes, names...),
		backends: byName,
		inflight: make(map[string]int, len(names)),
		windows:  make(map[string]*rollingWindow, len(names)),
		traces:   make(map[string]*svcobs.Doc),
		stop:     make(chan struct{}),
	}
	if cfg.StaleEntries > 0 {
		rt.stale = serve.NewCache(cfg.StaleEntries)
	}
	rt.owners = serve.NewCache(4096)
	for _, n := range names {
		rt.windows[n] = newRollingWindow()
	}
	rt.health = newHealthTracker(cfg.Health, names)
	rt.health.onTransition = func(backend, from, to string) {
		if to == StateEjected {
			rt.mu.Lock()
			rt.counters.Ejections++
			rt.mu.Unlock()
		}
		if cfg.Logger != nil {
			cfg.Logger.Info("backend health transition",
				"backend", backend, "from", from, "to", to)
		}
	}
	if cfg.Health.ProbeInterval > 0 {
		rt.checker.Add(1)
		go rt.checkLoop()
	}
	return rt, nil
}

// Close stops the background health checker. Backends are not owned
// by the router and stay up.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.checker.Wait()
}

// Backends returns the ring membership, sorted.
func (rt *Router) Backends() []string { return rt.ring.Backends() }

// Ring exposes the router's hash ring (read-only).
func (rt *Router) Ring() *Ring { return rt.ring }

// Counters returns a snapshot of the routing counters.
func (rt *Router) Counters() Counters {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.counters
}

// HealthSnapshot exports every backend's health state.
func (rt *Router) HealthSnapshot() map[string]HealthStatus { return rt.health.snapshot() }

// ---- health checking ----

func (rt *Router) checkLoop() {
	defer rt.checker.Done()
	t := time.NewTicker(rt.cfg.Health.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.ProbeNow()
		}
	}
}

// ProbeNow runs one active health-check round synchronously: ejected
// backends past their cooldown move to probing, and every non-ejected
// backend's Healthz is probed under ProbeTimeout. Tests and jadeload
// call it directly for deterministic rounds; the background loop
// (when enabled) calls it on each tick.
func (rt *Router) ProbeNow() {
	names := rt.health.beginProbes()
	var wg sync.WaitGroup
	for _, name := range names {
		b := rt.backends[name]
		if b == nil {
			continue
		}
		wg.Add(1)
		go func(name string, b Backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.Health.ProbeTimeout)
			defer cancel()
			err := b.Healthz(ctx)
			rt.health.observe(name, err == nil)
		}(name, b)
	}
	wg.Wait()
}

// ---- routing ----

// cloneSpec deep-copies a canonical spec so concurrent attempts (a
// hedged pair, or many goroutines sharing one template) never hand the
// same *JobSpec to two backends at once — serve re-canonicalizes in
// place, which would race.
func cloneSpec(spec *serve.JobSpec) *serve.JobSpec {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("router: marshal job spec: %v", err))
	}
	var out serve.JobSpec
	if err := json.Unmarshal(b, &out); err != nil {
		panic(fmt.Sprintf("router: clone job spec: %v", err))
	}
	return &out
}

func (rt *Router) bump(f func(*Counters)) {
	rt.mu.Lock()
	f(&rt.counters)
	rt.mu.Unlock()
}

func (rt *Router) addInflight(name string, d int) {
	rt.mu.Lock()
	rt.inflight[name] += d
	rt.mu.Unlock()
}

// candidates orders the routable backends for a key: the ring
// sequence filtered to routable members, with a bounded-load demotion
// of an overloaded primary. A degraded backend keeps its ring rank on
// purpose — demoting it on the first failure would starve it of the
// traffic whose outcomes decide between recovery (a success resets the
// streak) and ejection (FallThreshold passive failures); hedging
// covers the latency cost of keeping a suspect primary first. The
// second return reports whether the load bound shifted the primary.
func (rt *Router) candidates(key string) ([]string, bool) {
	seq := rt.ring.Sequence(key)
	out := make([]string, 0, len(seq))
	for _, name := range seq {
		if rt.health.routable(name) {
			out = append(out, name)
		}
	}
	shifted := false
	if rt.cfg.LoadBoundFactor > 0 && len(out) > 1 {
		rt.mu.Lock()
		total := 0
		for _, name := range out {
			total += rt.inflight[name]
		}
		mean := float64(total) / float64(len(out))
		bound := rt.cfg.LoadBoundFactor*mean + 1
		if float64(rt.inflight[out[0]]) >= bound && float64(rt.inflight[out[1]]) < bound {
			out[0], out[1] = out[1], out[0]
			shifted = true
		}
		rt.mu.Unlock()
	}
	return out, shifted
}

// hedgeDelay is the adaptive hedge trigger for a backend: its rolling
// p95 when history exists, else the configured default, clamped to
// [HedgeMin, HedgeMax].
func (rt *Router) hedgeDelay(name string) time.Duration {
	d := rt.cfg.HedgeAfter
	rt.mu.Lock()
	w := rt.windows[name]
	rt.mu.Unlock()
	if w != nil {
		if p95, ok := w.Quantile(0.95); ok {
			d = time.Duration(p95 * float64(time.Second))
		}
	}
	if d < rt.cfg.HedgeMin {
		d = rt.cfg.HedgeMin
	}
	if d > rt.cfg.HedgeMax {
		d = rt.cfg.HedgeMax
	}
	return d
}

// failoverEligible reports whether an attempt error justifies trying
// the next replica: transport errors, 5xx, and capacity refusals do;
// client errors (bad spec, unknown job) would fail identically
// everywhere.
func failoverEligible(err error) bool {
	var be *BackendError
	if !asBackendError(err, &be) {
		return true // transport-level or context error
	}
	return be.Code == 0 || be.Code >= 500 || be.Code == http.StatusTooManyRequests
}

// healthPenalty reports whether an attempt error is evidence the
// backend itself is sick (transport failure or 5xx — a 429 means it
// is alive but full).
func healthPenalty(err error) bool {
	var be *BackendError
	if !asBackendError(err, &be) {
		return true
	}
	return be.Code == 0 || be.Code >= 500
}

func asBackendError(err error, out **BackendError) bool {
	return errors.As(err, out)
}

type attemptOutcome struct {
	backend string
	doc     *serve.JobStatus
	err     error
	sec     float64
	isHedge bool
	// hedged reports whether a hedge launched during this attempt
	// (regardless of who won).
	hedged bool
}

// Do routes one canonicalized job spec. The spec must already be
// canonical (Canonicalize called); Do never mutates it — each backend
// attempt gets its own clone.
func (rt *Router) Do(ctx context.Context, spec *serve.JobSpec, sync bool, traceID string) *Result {
	hash := spec.Hash()
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.RequestTimeout)
	defer cancel()

	var trace *svcobs.Trace
	var root *svcobs.Span
	if rt.cfg.Spans {
		trace = svcobs.NewTrace(traceID)
		root = trace.Root("route")
		root.SetAttr("spec_hash", hash)
		defer func() {
			root.End()
			rt.storeTrace(trace)
		}()
	}

	cands, shifted := rt.candidates(hash)
	if shifted {
		rt.bump(func(c *Counters) { c.LoadShifts++ })
	}
	primary := rt.ring.Primary(hash)
	if len(cands) == 0 {
		rt.bump(func(c *Counters) { c.Unroutable++ })
		return rt.degrade(hash, root)
	}

	rt.bump(func(c *Counters) { c.Routed++ })
	res := &Result{}
	var firstErr error
	for i := 0; i < len(cands); i++ {
		target := cands[i]
		var hedge string
		if i+1 < len(cands) {
			hedge = cands[i+1]
		}
		out := rt.attempt(ctx, spec, sync, traceID, target, hedge, root)
		if out.hedged {
			res.Hedged = true
		}
		if out.err == nil {
			res.Doc, res.Backend = out.doc, out.backend
			res.Code = http.StatusOK
			if !sync && out.doc.Status != serve.StatusDone && out.doc.Status != serve.StatusFailed {
				res.Code = http.StatusAccepted
			}
			if out.doc.Status == serve.StatusFailed && out.doc.ErrorCode == serve.ErrCodeTimeout {
				res.Code = http.StatusGatewayTimeout
			}
			if out.isHedge {
				res.HedgeWin = true
				rt.bump(func(c *Counters) { c.HedgeWins++ })
			}
			// A request is a failover when someone other than the ring
			// primary served it for availability reasons: the primary was
			// skipped (unroutable or overloaded) or failed earlier in the
			// loop. Hedge wins are latency races, not failovers.
			if out.backend != primary && !out.isHedge {
				rt.bump(func(c *Counters) { c.Failovers++ })
			}
			rt.noteSuccess(hash, out.doc, out.backend)
			return res
		}
		if firstErr == nil {
			firstErr = out.err
		}
		if !failoverEligible(out.err) {
			break
		}
		// The failed target was attempted as the hedge's primary next
		// round only if it wasn't already the hedge; either way the loop
		// advances one rank.
	}

	// Every routable replica failed; degrade.
	deg := rt.degrade(hash, root)
	deg.Hedged = res.Hedged
	if deg.Err != nil {
		deg.Err = firstErr
		var be *BackendError
		if asBackendError(firstErr, &be) && be.Code != 0 && be.Code < 500 && be.Code != http.StatusTooManyRequests {
			deg.Code = be.Code
		}
	}
	return deg
}

// attempt runs one primary attempt with an optional hedge to the next
// replica. First success wins and the loser is cancelled. A hedge win
// counts a passive health failure against the primary — that is how a
// hung backend gets ejected without ever returning an error.
func (rt *Router) attempt(ctx context.Context, spec *serve.JobSpec, sync bool, traceID, primary, hedge string, parent *svcobs.Span) attemptOutcome {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan attemptOutcome, 2)

	launch := func(name string, isHedge bool) {
		span := parent.Child("attempt:" + name)
		if isHedge {
			span.SetAttr("hedge", "true")
		}
		go func() {
			defer span.End()
			rt.addInflight(name, 1)
			defer rt.addInflight(name, -1)
			start := time.Now()
			doc, err := rt.backends[name].Submit(actx, cloneSpec(spec), sync, traceID)
			ch <- attemptOutcome{backend: name, doc: doc, err: err, sec: time.Since(start).Seconds(), isHedge: isHedge}
		}()
	}

	launch(primary, false)
	var timerC <-chan time.Time
	var timer *time.Timer
	if !rt.cfg.DisableHedging && hedge != "" && hedge != primary {
		timer = time.NewTimer(rt.hedgeDelay(primary))
		defer timer.Stop()
		timerC = timer.C
	}

	outstanding := 1
	hedged := false
	var firstErr error
	for outstanding > 0 {
		select {
		case <-timerC:
			timerC = nil
			hedged = true
			outstanding++
			rt.bump(func(c *Counters) { c.Hedged++ })
			launch(hedge, true)
		case out := <-ch:
			outstanding--
			if out.err == nil {
				cancel() // first success wins; the loser sees ctx.Canceled
				rt.recordLatency(out.backend, out.sec)
				if out.isHedge {
					// The primary lost the race: soft evidence it is slow
					// or hung. Suspicion alone never ejects — a hung
					// backend's failed health probes (or explicit errors)
					// supply the confirming hard failure.
					rt.health.suspect(primary)
					rt.health.observe(out.backend, true)
				} else {
					rt.health.observe(primary, true)
				}
				out.hedged = hedged
				return out
			}
			if healthPenalty(out.err) {
				rt.health.observe(out.backend, false)
			}
			// Prefer reporting the primary's error over the hedge's.
			if firstErr == nil || !out.isHedge {
				firstErr = out.err
			}
		}
	}
	return attemptOutcome{backend: primary, err: firstErr, hedged: hedged}
}

// degrade is the last resort: serve the stale cached result for the
// key (marked Stale) instead of a 5xx, or fail with 503 when the key
// was never cached.
func (rt *Router) degrade(hash string, parent *svcobs.Span) *Result {
	if rt.stale != nil {
		if data, ok := rt.stale.Get(hash); ok {
			span := parent.Child("stale-serve")
			span.End()
			rt.bump(func(c *Counters) { c.StaleServed++ })
			doc := &serve.JobStatus{
				Schema:   serve.StatusSchema,
				ID:       "stale-" + hash[:12],
				Status:   serve.StatusDone,
				SpecHash: hash,
				CacheHit: true,
				Result:   json.RawMessage(data),
			}
			return &Result{Doc: doc, Code: http.StatusOK, Stale: true}
		}
	}
	return &Result{
		Code: http.StatusServiceUnavailable,
		Err:  fmt.Errorf("router: no live backend for key %s and no stale result cached", hash[:12]),
	}
}

// noteSuccess records the side effects of a successful routed
// request: completed results feed the stale cache, async submissions
// record their owner for status polling.
func (rt *Router) noteSuccess(hash string, doc *serve.JobStatus, backend string) {
	if rt.stale != nil && doc.Status == serve.StatusDone && len(doc.Result) > 0 {
		rt.stale.Put(hash, doc.Result)
	}
	if doc.ID != "" && doc.Status != serve.StatusDone && doc.Status != serve.StatusFailed {
		rt.owners.Put(doc.ID, []byte(backend))
	}
}

func (rt *Router) recordLatency(name string, sec float64) {
	rt.mu.Lock()
	w := rt.windows[name]
	rt.mu.Unlock()
	if w != nil {
		w.Record(sec)
	}
}

// Status routes an async status poll to the backend that owns the
// job. Unknown jobs (or jobs owned by an ejected backend) fail with a
// BackendError carrying 404/503.
func (rt *Router) Status(ctx context.Context, jobID string) (*serve.JobStatus, error) {
	owner, ok := rt.owners.Get(jobID)
	if !ok {
		return nil, &BackendError{Backend: "", Code: http.StatusNotFound, Msg: "unknown job " + jobID}
	}
	name := string(owner)
	b := rt.backends[name]
	if b == nil {
		return nil, &BackendError{Backend: name, Code: http.StatusNotFound, Msg: "unknown backend for job " + jobID}
	}
	if !rt.health.routable(name) {
		return nil, &BackendError{Backend: name, Code: http.StatusServiceUnavailable, Msg: "owning backend is not routable"}
	}
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.RequestTimeout)
	defer cancel()
	return b.Status(ctx, jobID)
}

// ---- trace store ----

func (rt *Router) storeTrace(trace *svcobs.Trace) {
	doc := trace.Doc("")
	if doc == nil {
		return
	}
	rt.traceMu.Lock()
	defer rt.traceMu.Unlock()
	if _, exists := rt.traces[trace.ID()]; !exists {
		rt.traceOrder = append(rt.traceOrder, trace.ID())
	}
	rt.traces[trace.ID()] = doc
	for len(rt.traceOrder) > rt.cfg.TraceRetention {
		drop := rt.traceOrder[0]
		rt.traceOrder = rt.traceOrder[1:]
		delete(rt.traces, drop)
	}
}

// Trace returns a stored request trace by ID.
func (rt *Router) Trace(id string) (*svcobs.Doc, bool) {
	rt.traceMu.Lock()
	defer rt.traceMu.Unlock()
	doc, ok := rt.traces[id]
	return doc, ok
}
