package router

import (
	"sort"
	"sync"
)

// rollingWindow is a fixed-size ring of the most recent request
// latencies for one backend; the router reads its p95 to decide when
// a sync request is slow enough to hedge. A small window (128 samples)
// tracks regime changes quickly — a backend that just started hanging
// pushes its p95 up within a few requests — while smoothing over
// single outliers.
type rollingWindow struct {
	mu      sync.Mutex
	samples []float64 // ring buffer, seconds
	next    int
	filled  bool
}

const windowSize = 128

func newRollingWindow() *rollingWindow {
	return &rollingWindow{samples: make([]float64, windowSize)}
}

// Record folds one latency sample (seconds) into the window.
func (w *rollingWindow) Record(sec float64) {
	w.mu.Lock()
	w.samples[w.next] = sec
	w.next++
	if w.next == len(w.samples) {
		w.next = 0
		w.filled = true
	}
	w.mu.Unlock()
}

// Quantile returns the q-quantile (q in [0,1]) of the window, or
// (0, false) when no samples have been recorded.
func (w *rollingWindow) Quantile(q float64) (float64, bool) {
	w.mu.Lock()
	n := w.next
	if w.filled {
		n = len(w.samples)
	}
	if n == 0 {
		w.mu.Unlock()
		return 0, false
	}
	buf := append([]float64(nil), w.samples[:n]...)
	w.mu.Unlock()
	sort.Float64s(buf)
	idx := int(q * float64(len(buf)))
	if idx >= len(buf) {
		idx = len(buf) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return buf[idx], true
}

// Count returns the number of samples currently in the window.
func (w *rollingWindow) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.filled {
		return len(w.samples)
	}
	return w.next
}
