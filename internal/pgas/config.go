// Package pgas models a modern partitioned-global-address-space
// machine — the middle ground between the paper's 1995 platforms. The
// global address space is partitioned into per-locale segments: every
// shared object has a home locale whose segment holds its
// authoritative copy, and any locale can reach any object with a
// one-sided remote get/put (RDMA-style: no software on the remote CPU,
// only NIC occupancy). On top of the hardware sits a Jade
// implementation with a software write-back cache per locale and an
// optional software-managed aggregation layer that coalesces a task's
// outstanding remote gets to the same home locale into one batched
// message — the optimization Rolinger et al. show matters for
// irregular, data-dependent access patterns that static placement
// cannot analyze.
package pgas

// LocalityLevel selects how the scheduler uses affinity information,
// mirroring the paper's three locality optimization levels.
type LocalityLevel int

const (
	// NoAffinity keeps a single task queue and hands enabled tasks to
	// idle locales first-come first-served.
	NoAffinity LocalityLevel = iota
	// Affinity runs each task at the home locale of its locality
	// object (work follows data — the PGAS owner-computes rule).
	Affinity
	// TaskPlacement honors explicit jade.PlaceOn placement.
	TaskPlacement
)

// String implements fmt.Stringer.
func (l LocalityLevel) String() string {
	switch l {
	case NoAffinity:
		return "No Affinity"
	case Affinity:
		return "Affinity"
	case TaskPlacement:
		return "Task Placement"
	}
	return "unknown"
}

// Config parameterizes the PGAS machine. The defaults describe a
// contemporary RDMA fabric: microsecond-scale one-sided latency,
// ~0.8 GB/s effective per-NIC bandwidth, and a per-message software
// injection cost that makes many small messages measurably worse than
// one large one — the gap aggregation exists to close.
type Config struct {
	// Procs is the locale count.
	Procs int
	// Level is the affinity optimization level.
	Level LocalityLevel

	// RemoteLatencySec is the one-way wire latency of a one-sided
	// operation (a get pays it twice: request out, data back).
	RemoteLatencySec float64
	// BandwidthBytesPerSec is the per-NIC injection bandwidth.
	BandwidthBytesPerSec float64
	// HeaderSec is the per-message software injection overhead on the
	// issuing NIC (descriptor build, doorbell).
	HeaderSec float64
	// HeaderBytes is the per-message wire header; aggregation's byte
	// saving is (batchedOps-1) headers per coalesced message.
	HeaderBytes int

	// TaskMsgBytes sizes a task-assignment message; CompletionBytes a
	// completion notice.
	TaskMsgBytes    int
	CompletionBytes int

	// SpeedFactor scales task work relative to the reference (DASH)
	// processor; a modern core runs the applications faster.
	SpeedFactor float64

	// Main-locale task management costs: creating a task,
	// deciding+initiating an assignment, and handling a completion
	// notice. DispatchSec is the per-task dispatch cost on the
	// executing locale.
	TaskCreateSec     float64
	AssignSec         float64
	CompleteHandleSec float64
	DispatchSec       float64

	// TargetTasks is the scheduler's target number of concurrently
	// assigned tasks per locale.
	TargetTasks int

	// Aggregation enables the software-managed aggregation layer: a
	// task's outstanding remote gets (and its write-backs) to the same
	// home locale coalesce into one batched message paying one header.
	// Off, every remote object moves in its own message. Toggleable
	// like the paper's own optimizations.
	Aggregation bool
}

// DefaultConfig builds a PGAS machine of n locales at the given
// affinity level with aggregation on (the modern default).
func DefaultConfig(n int, level LocalityLevel) Config {
	return Config{
		Procs:                n,
		Level:                level,
		RemoteLatencySec:     5e-6,
		BandwidthBytesPerSec: 8e8,
		HeaderSec:            1.5e-6,
		HeaderBytes:          64,
		TaskMsgBytes:         128,
		CompletionBytes:      32,
		SpeedFactor:          0.5,
		TaskCreateSec:        12e-6,
		AssignSec:            10e-6,
		CompleteHandleSec:    10e-6,
		DispatchSec:          4e-6,
		TargetTasks:          1,
		Aggregation:          true,
	}
}

// occupancy is the issuing NIC's time to inject one message carrying
// n payload bytes.
func (c *Config) occupancy(n int) float64 {
	return c.HeaderSec + float64(n+c.HeaderBytes)/c.BandwidthBytesPerSec
}
