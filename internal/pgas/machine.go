package pgas

import (
	"repro/internal/fault"
	"repro/internal/fuse"
	"repro/internal/jade"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/sim"
)

// locale is one PGAS locale: a core, a NIC, and the locale's software
// write-back cache over the global address space. The cache maps
// object IDs (dense) to the version held locally; absent means the
// locale must get the object from its home segment.
type locale struct {
	cpu *sim.Processor
	nic *sim.Processor
	// store[id] is the object version cached at this locale, or
	// absentVersion. The home locale always holds the authoritative
	// copy of its segment's objects.
	store []jade.Version
	load  int
}

// absentVersion marks an object not present in a locale's cache.
const absentVersion jade.Version = -1

// taskState mirrors the scheduler/communicator bookkeeping for one
// task.
type taskState struct {
	t          *jade.Task
	target     int
	proc       int
	needed     int
	firstReq   sim.Time
	lastArrive sim.Time
}

// wbItem is one write-back: a produced object version headed for its
// home segment.
type wbItem struct {
	o *jade.Object
	v jade.Version
}

// Machine is the PGAS platform implementing jade.Platform. One-sided
// remote operations occupy the issuing NIC (and, for the data leg of
// a get, the home NIC) but never a remote CPU; faults degrade them
// through the injector's link and remote-latency hooks. The fabric is
// reliable — there is no drop/retransmit protocol, so message-loss
// faults do not apply here.
type Machine struct {
	cfg Config
	eng *sim.Engine
	rt  *jade.Runtime

	locs []*locale

	pool        []*taskState
	createdDone []sim.Time // dense by task ID

	// Obs, when non-nil, collects structured observability data
	// (per-object stats, latency histograms, state timelines).
	Obs *obsv.Observer
	// Inj, when non-nil, injects deterministic faults: remote-op
	// latency inflation on victim locales, degraded links, and
	// straggler cores.
	Inj *fault.Injector

	stats    metrics.Run
	execBase sim.Time
	busyBase []float64
}

var _ jade.Platform = (*Machine)(nil)

// New builds a PGAS machine.
func New(cfg Config) *Machine {
	if cfg.Procs < 1 {
		panic("pgas: need at least one locale")
	}
	if cfg.TargetTasks < 1 {
		cfg.TargetTasks = 1
	}
	m := &Machine{cfg: cfg, eng: sim.New()}
	for i := 0; i < cfg.Procs; i++ {
		_ = i
		m.locs = append(m.locs, &locale{
			cpu: sim.NewProcessor(m.eng),
			nic: sim.NewProcessor(m.eng),
		})
	}
	m.stats.Procs = cfg.Procs
	return m
}

// Attach implements jade.Platform.
func (m *Machine) Attach(rt *jade.Runtime) { m.rt = rt }

// Attached reports whether a runtime has ever been bound to the
// machine; graph replay uses it to refuse reused platforms.
func (m *Machine) Attached() bool { return m.rt != nil }

// Processors implements jade.Platform.
func (m *Machine) Processors() int { return m.cfg.Procs }

// ObjectAllocated implements jade.Platform: the object's segment is
// allocated in place at its home locale.
func (m *Machine) ObjectAllocated(o *jade.Object) {
	for _, lc := range m.locs {
		for len(lc.store) <= int(o.ID) {
			lc.store = append(lc.store, absentVersion)
		}
	}
	m.locs[o.Home].store[o.ID] = 0
}

// linkFactor is the injector's link degradation (1 when healthy).
func (m *Machine) linkFactor(from, to int) float64 {
	return m.Inj.LinkFactor(from, to)
}

// latency is the one-way latency of a one-sided operation whose
// remote end is locale `remote`; victim locales answer slower.
func (m *Machine) latency(remote int) sim.Time {
	return sim.Time(m.cfg.RemoteLatencySec * m.Inj.RemoteFactor(remote, m.cfg.Procs))
}

// submitMgmt charges d seconds of task-management work to the main
// locale, recording a mgmt span when observability is on.
func (m *Machine) submitMgmt(at sim.Time, d float64) sim.Time {
	var done func(start, end sim.Time)
	if m.Obs.Enabled() {
		done = func(start, end sim.Time) {
			m.Obs.Span(0, obsv.StateMgmt, float64(start), float64(end))
		}
	}
	return m.locs[0].cpu.Submit(at, sim.Time(d), done)
}

// TaskCreated implements jade.Platform.
func (m *Machine) TaskCreated(t *jade.Task, enabled bool) {
	done := m.submitMgmt(m.eng.Now(), m.cfg.TaskCreateSec)
	m.stats.TaskMgmtTime += m.cfg.TaskCreateSec
	for len(m.createdDone) <= int(t.ID) {
		m.createdDone = append(m.createdDone, 0)
	}
	m.createdDone[t.ID] = done
	if enabled {
		m.eng.At(done, func() { m.schedule(t) })
	}
}

// TaskEnabled implements jade.Platform.
func (m *Machine) TaskEnabled(t *jade.Task) {
	at := m.eng.Now()
	if int(t.ID) < len(m.createdDone) {
		if cd := m.createdDone[t.ID]; cd > at {
			at = cd
		}
	}
	m.eng.At(at, func() { m.schedule(t) })
}

// SerialWork implements jade.Platform.
func (m *Machine) SerialWork(d float64) {
	m.locs[0].cpu.Submit(m.eng.Now(), sim.Time(d*m.cfg.SpeedFactor), nil)
}

// MainTouches implements jade.Platform: serial phases get remote
// objects to the main locale synchronously (batched per home when
// aggregation is on) and write back produced versions.
func (m *Machine) MainTouches(accs []jade.Access) {
	main := m.locs[0]
	var fetch []jade.Access
	for _, a := range accs {
		if !a.Reads() {
			continue
		}
		o := a.Obj
		if main.store[o.ID] == a.RequiredVersion {
			m.stats.LocalBytes += int64(o.Size)
			continue
		}
		if o.Home == 0 {
			main.store[o.ID] = a.RequiredVersion
			m.stats.LocalBytes += int64(o.Size)
			continue
		}
		fetch = append(fetch, a)
	}
	for _, batch := range groupByHome(fetch, accessHome, m.cfg.Aggregation) {
		h := batch[0].Obj.Home
		bytes := 0
		for _, a := range batch {
			bytes += a.Obj.Size
		}
		issued := main.cpu.FreeAt()
		req := main.nic.Submit(issued, sim.Time(m.cfg.occupancy(0)*m.linkFactor(0, h)), nil)
		rep := m.locs[h].nic.Submit(req+m.latency(h), sim.Time(m.cfg.occupancy(bytes)*m.linkFactor(h, 0)), nil)
		arrive := rep + m.latency(h)
		main.cpu.Advance(arrive)
		m.countMsg(len(batch), bytes)
		m.stats.RemoteGets += int64(len(batch))
		m.stats.RemoteBytes += int64(bytes)
		for _, a := range batch {
			main.store[a.Obj.ID] = a.RequiredVersion
			if m.Obs.Enabled() {
				m.Obs.ObjectFetch(int(a.Obj.ID), a.Obj.Name, a.Obj.Size, float64(arrive-issued), true)
			}
		}
		if m.Obs.Enabled() {
			m.Obs.Span(0, obsv.StateFetch, float64(issued), float64(arrive))
		}
	}
	var flush []wbItem
	for _, a := range accs {
		if !a.Writes() {
			continue
		}
		o := a.Obj
		v := a.RequiredVersion + 1
		main.store[o.ID] = v
		if o.Home != 0 {
			flush = append(flush, wbItem{o, v})
		}
	}
	m.flushWrites(0, flush)
}

// Drain implements jade.Platform.
func (m *Machine) Drain() {
	end := m.eng.Run()
	m.locs[0].cpu.Advance(end)
}

// Stats implements jade.Platform.
func (m *Machine) Stats() *metrics.Run {
	m.stats.ExecTime = float64(m.locs[0].cpu.FreeAt() - m.execBase)
	m.stats.ProcBusy = m.stats.ProcBusy[:0]
	for i, lc := range m.locs {
		b := float64(lc.cpu.BusyTime())
		if i < len(m.busyBase) {
			b -= m.busyBase[i]
		}
		m.stats.ProcBusy = append(m.stats.ProcBusy, b)
	}
	m.stats.Obsv = m.Obs.Snapshot(0)
	return &m.stats
}

// ResetStats implements jade.Platform.
func (m *Machine) ResetStats() {
	m.stats = metrics.Run{Procs: m.cfg.Procs}
	m.execBase = m.locs[0].cpu.FreeAt()
	m.busyBase = m.busyBase[:0]
	for _, lc := range m.locs {
		m.busyBase = append(m.busyBase, float64(lc.cpu.BusyTime()))
	}
	m.Obs.Reset()
}

// schedule assigns an enabled task. The affinity target is the home
// locale of the task's locality object (owner-computes); explicit
// placement overrides it at the TaskPlacement level.
func (m *Machine) schedule(t *jade.Task) {
	target := 0
	if lobj := t.LocalityObject(m.rt.Config().Locality); lobj != nil {
		target = lobj.Home
	}
	if m.cfg.Level == TaskPlacement && t.Placed >= 0 {
		target = t.Placed
	}
	ts := &taskState{t: t, target: target, proc: -1}

	if m.cfg.Level == NoAffinity {
		for i, lc := range m.locs {
			if lc.load < m.cfg.TargetTasks {
				m.assign(ts, i)
				return
			}
		}
		m.pool = append(m.pool, ts)
		return
	}
	// Work follows data: wait for the target locale rather than run
	// remotely — remote execution would turn every access into
	// fine-grained remote traffic.
	if m.locs[target].load < m.cfg.TargetTasks {
		m.assign(ts, target)
		return
	}
	m.pool = append(m.pool, ts)
}

// assign sends the task descriptor to its locale.
func (m *Machine) assign(ts *taskState, p int) {
	ts.proc = p
	m.locs[p].load++
	m.stats.TaskMgmtTime += m.cfg.AssignSec
	decided := m.submitMgmt(m.eng.Now(), m.cfg.AssignSec)
	if p == 0 {
		m.eng.At(decided, func() { m.taskArrived(ts) })
		return
	}
	sent := m.locs[0].nic.Submit(decided, sim.Time(m.cfg.occupancy(m.cfg.TaskMsgBytes)*m.linkFactor(0, p)), nil)
	m.eng.At(sent+m.latency(p), func() { m.taskArrived(ts) })
}

// countMsg accounts one wire message carrying ops coalesced remote
// operations and bytes of payload.
func (m *Machine) countMsg(ops, bytes int) {
	m.stats.MsgCount++
	m.stats.MsgBytes += int64(bytes)
	if ops > 1 {
		m.stats.AggregatedMsgs++
		m.stats.AggBenefitBytes += int64((ops - 1) * m.cfg.HeaderBytes)
	}
}

// taskArrived resolves the task's declared reads against the locale's
// cache and segment, then issues one-sided gets for the rest —
// batched per home locale when aggregation is on.
func (m *Machine) taskArrived(ts *taskState) {
	p := ts.proc
	lc := m.locs[p]
	var fetch []jade.Access
	if !m.rt.Config().WorkFree {
		for _, a := range ts.t.Accesses {
			if !a.Reads() {
				continue
			}
			o := a.Obj
			if lc.store[o.ID] == a.RequiredVersion {
				m.stats.LocalBytes += int64(o.Size)
				continue
			}
			if o.Home == p {
				// The locale's own segment: the authoritative copy is
				// already local once predecessors wrote it back.
				lc.store[o.ID] = a.RequiredVersion
				m.stats.LocalBytes += int64(o.Size)
				continue
			}
			fetch = append(fetch, a)
		}
	}
	if len(fetch) == 0 {
		m.ready(ts)
		return
	}
	ts.firstReq = m.eng.Now()
	batches := groupByHome(fetch, accessHome, m.cfg.Aggregation)
	ts.needed = len(batches)
	for _, b := range batches {
		m.get(ts, b)
	}
}

// get issues one one-sided (possibly batched) remote get: the request
// descriptor occupies the issuing NIC, the data leg the home NIC, and
// each leg pays the wire latency.
func (m *Machine) get(ts *taskState, batch []jade.Access) {
	p := ts.proc
	h := batch[0].Obj.Home
	bytes := 0
	for _, a := range batch {
		bytes += a.Obj.Size
	}
	issued := m.eng.Now()
	req := m.locs[p].nic.Submit(issued, sim.Time(m.cfg.occupancy(0)*m.linkFactor(p, h)), nil)
	rep := m.locs[h].nic.Submit(req+m.latency(h), sim.Time(m.cfg.occupancy(bytes)*m.linkFactor(h, p)), nil)
	m.countMsg(len(batch), bytes)
	m.stats.RemoteGets += int64(len(batch))
	m.stats.RemoteBytes += int64(bytes)
	m.eng.At(rep+m.latency(h), func() {
		lat := float64(m.eng.Now() - issued)
		for _, a := range batch {
			m.locs[p].store[a.Obj.ID] = a.RequiredVersion
			m.stats.ReplicatedReads++
			m.stats.ObjectLatency += lat
			if m.Obs.Enabled() {
				m.Obs.ObjectFetch(int(a.Obj.ID), a.Obj.Name, a.Obj.Size, lat, true)
			}
		}
		if m.eng.Now() > ts.lastArrive {
			ts.lastArrive = m.eng.Now()
		}
		ts.needed--
		if ts.needed == 0 {
			m.stats.TaskLatency += float64(ts.lastArrive - ts.firstReq)
			if m.Obs.Enabled() {
				m.Obs.TaskWait(float64(ts.lastArrive - ts.firstReq))
				m.Obs.Span(p, obsv.StateFetch, float64(ts.firstReq), float64(ts.lastArrive))
			}
			m.ready(ts)
		}
	})
}

// ready executes the task on its locale's core.
func (m *Machine) ready(ts *taskState) {
	p := ts.proc
	work := ts.t.Work * m.cfg.SpeedFactor * m.Inj.CPUFactor(p)
	m.stats.TaskMgmtTime += m.cfg.DispatchSec
	m.stats.TaskCount++
	if p == ts.target {
		m.stats.TasksOnTarget++
	}
	m.stats.TaskExecTotal += work
	if segs := ts.t.Segments; len(segs) > 0 && !m.rt.Config().WorkFree {
		// Staged task: segments run back to back; each boundary writes
		// released objects back to their homes and enables successors.
		var run func(i int)
		run = func(i int) {
			m.rt.RunSegmentBody(ts.t, i)
			d := segs[i].Work * m.cfg.SpeedFactor * m.Inj.CPUFactor(p)
			if i == 0 {
				d += m.cfg.DispatchSec
			}
			m.locs[p].cpu.Submit(m.eng.Now(), sim.Time(d), func(start, end sim.Time) {
				m.Obs.Span(p, obsv.StateTask, float64(start), float64(end))
				var flush []wbItem
				for _, o := range segs[i].Release {
					if a, ok := ts.t.AccessOn(o); ok && a.Writes() {
						v := a.RequiredVersion + 1
						m.locs[p].store[o.ID] = v
						if o.Home != p {
							flush = append(flush, wbItem{o, v})
						}
					}
				}
				m.flushWrites(p, flush)
				for _, o := range segs[i].Release {
					for _, n := range m.rt.ReleaseEarly(ts.t, o) {
						m.TaskEnabled(n)
					}
				}
				if i+1 < len(segs) {
					run(i + 1)
					return
				}
				m.completed(ts)
			})
		}
		run(0)
		return
	}
	m.rt.RunBody(ts.t)
	m.locs[p].cpu.Submit(m.eng.Now(), sim.Time(m.cfg.DispatchSec+work), func(start, end sim.Time) {
		m.Obs.Span(p, obsv.StateTask, float64(start), float64(end))
		m.completed(ts)
	})
}

// completed writes produced versions back to their home segments
// (release consistency: the puts are asynchronous background traffic)
// and notifies the main locale.
func (m *Machine) completed(ts *taskState) {
	p := ts.proc
	lc := m.locs[p]
	var flush []wbItem
	for _, a := range ts.t.Accesses {
		if !a.Writes() {
			continue
		}
		o := a.Obj
		v := a.RequiredVersion + 1
		if lc.store[o.ID] == v {
			// A staged release already produced and flushed this write.
			continue
		}
		lc.store[o.ID] = v
		if o.Home != p {
			flush = append(flush, wbItem{o, v})
		}
	}
	m.flushWrites(p, flush)
	m.rt.TaskDone(ts.t)
	notify := func() {
		m.stats.TaskMgmtTime += m.cfg.CompleteHandleSec
		m.locs[0].cpu.Submit(m.eng.Now(), sim.Time(m.cfg.CompleteHandleSec), func(start, end sim.Time) {
			m.Obs.Span(0, obsv.StateMgmt, float64(start), float64(end))
			lc.load--
			m.drainPool(p)
		})
	}
	if p == 0 {
		notify()
		return
	}
	sent := m.locs[p].nic.Submit(m.eng.Now(), sim.Time(m.cfg.occupancy(m.cfg.CompletionBytes)*m.linkFactor(p, 0)), nil)
	m.eng.At(sent+m.latency(0), notify)
}

// flushWrites issues one-sided puts carrying the produced versions to
// their home segments, batched per home when aggregation is on. The
// puts occupy the issuing NIC and land asynchronously — completion
// does not wait for them (release consistency); ordering correctness
// comes from the synchronizer, the puts model the wire cost.
func (m *Machine) flushWrites(p int, flush []wbItem) {
	if len(flush) == 0 || m.rt.Config().WorkFree {
		// Work-free runs still need version bookkeeping so later
		// phases resolve, but skip the traffic like task-level gets.
		for _, it := range flush {
			m.locs[it.o.Home].store[it.o.ID] = it.v
		}
		return
	}
	for _, batch := range groupByHome(flush, wbHome, m.cfg.Aggregation) {
		h := batch[0].o.Home
		bytes := 0
		for _, it := range batch {
			bytes += it.o.Size
		}
		sent := m.locs[p].nic.Submit(m.eng.Now(), sim.Time(m.cfg.occupancy(bytes)*m.linkFactor(p, h)), nil)
		m.countMsg(len(batch), bytes)
		m.stats.RemotePuts += int64(len(batch))
		arrive := sent + m.latency(h)
		items := batch
		m.eng.At(arrive, func() {
			for _, it := range items {
				m.locs[h].store[it.o.ID] = it.v
			}
		})
	}
}

// drainPool hands pooled tasks to the newly free locale: any pooled
// task under NoAffinity (FIFO), only tasks targeting it otherwise.
func (m *Machine) drainPool(p int) {
	for m.locs[p].load < m.cfg.TargetTasks && len(m.pool) > 0 {
		pick := -1
		if m.cfg.Level == NoAffinity {
			pick = 0
		} else {
			for i, ts := range m.pool {
				if ts.target == p {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			return
		}
		ts := m.pool[pick]
		m.pool = append(m.pool[:pick], m.pool[pick+1:]...)
		m.assign(ts, p)
	}
}

// accessHome and wbHome key the aggregation grouping.
func accessHome(a jade.Access) int { return a.Obj.Home }
func wbHome(it wbItem) int         { return it.o.Home }

// groupByHome partitions items into per-home batches via the shared
// destination coalescer (the same mechanism the iPSC model batches
// same-owner fetches with), preserving the first-appearance order of
// homes (deterministic — no map iteration). With aggregation off every
// item is its own singleton batch.
func groupByHome[T any](items []T, home func(T) int, aggregate bool) [][]T {
	return fuse.GroupByDest(items, home, aggregate)
}
