package pgas

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/apps/spmv"
	"repro/internal/fault"
	"repro/internal/jade"
	"repro/internal/metrics"
	"repro/internal/obsv"
)

func spmvCfg() spmv.Config {
	c := spmv.Small()
	c.N = 96
	c.Iterations = 2
	return c
}

// runSpmv executes the irregular workload on a fresh machine and
// returns the machine and its run.
func runSpmv(t *testing.T, procs int, level LocalityLevel, agg bool, inj *fault.Injector, obs bool) (*Machine, *metrics.Run) {
	t.Helper()
	cfg := DefaultConfig(procs, level)
	cfg.Aggregation = agg
	m := New(cfg)
	m.Inj = inj
	if obs {
		m.Obs = obsv.New(procs)
	}
	rt := jade.New(m, jade.Config{})
	spmv.Run(rt, spmvCfg(), spmv.NewWorkload(spmvCfg()))
	return m, rt.Finish()
}

func reportJSON(t *testing.T, r *metrics.Run) []byte {
	t.Helper()
	b, err := json.MarshalIndent(r.Report(), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDeterministic(t *testing.T) {
	_, a := runSpmv(t, 8, Affinity, true, nil, true)
	_, b := runSpmv(t, 8, Affinity, true, nil, true)
	if !bytes.Equal(reportJSON(t, a), reportJSON(t, b)) {
		t.Fatal("identical runs produced different reports")
	}
}

func TestAggregationReducesMessages(t *testing.T) {
	_, on := runSpmv(t, 8, Affinity, true, nil, false)
	_, off := runSpmv(t, 8, Affinity, false, nil, false)
	if on.AggregatedMsgs == 0 || on.AggBenefitBytes == 0 {
		t.Fatalf("aggregation never batched: %d msgs, %d benefit bytes",
			on.AggregatedMsgs, on.AggBenefitBytes)
	}
	if on.MsgCount >= off.MsgCount {
		t.Fatalf("aggregation did not cut messages: on=%d off=%d", on.MsgCount, off.MsgCount)
	}
	if on.ExecTime >= off.ExecTime {
		t.Fatalf("aggregation did not help exec time: on=%g off=%g", on.ExecTime, off.ExecTime)
	}
	// The same one-sided operations happen either way; only the
	// message framing differs.
	if on.RemoteGets != off.RemoteGets || on.RemotePuts != off.RemotePuts {
		t.Fatalf("op counts changed with framing: gets %d/%d puts %d/%d",
			on.RemoteGets, off.RemoteGets, on.RemotePuts, off.RemotePuts)
	}
	if off.AggregatedMsgs != 0 || off.AggBenefitBytes != 0 {
		t.Fatalf("aggregation-off run reports batching: %d/%d",
			off.AggregatedMsgs, off.AggBenefitBytes)
	}
}

// runRegular builds a water-like regular pattern: per-locale replicas
// plus one shared block, so every task needs at most one remote get
// and one remote put. The aggregation layer must be provably inert on
// it.
func runRegular(t *testing.T, agg bool) *metrics.Run {
	t.Helper()
	const procs = 4
	cfg := DefaultConfig(procs, Affinity)
	cfg.Aggregation = agg
	m := New(cfg)
	rt := jade.New(m, jade.Config{})
	state := rt.Alloc("state", 4096, nil)
	reps := make([]*jade.Object, procs)
	for i := range reps {
		reps[i] = rt.Alloc("rep", 1024, nil, jade.OnProcessor(i))
	}
	for it := 0; it < 3; it++ {
		for i := range reps {
			i := i
			rt.WithOnly(func(s *jade.Spec) {
				s.RdWr(reps[i])
				s.Rd(state)
			}, 40e-6, func() {})
		}
		rt.Wait()
		rt.Serial(25e-6, func() {}, func(s *jade.Spec) {
			s.Rd(reps[0])
			s.Wr(state)
		})
	}
	return rt.Finish()
}

func TestAggregationNeutralForRegularAccess(t *testing.T) {
	on := reportJSON(t, runRegular(t, true))
	off := reportJSON(t, runRegular(t, false))
	if !bytes.Equal(on, off) {
		t.Fatalf("aggregation toggle changed a single-get workload:\non: %s\noff: %s", on, off)
	}
}

func TestInertInjectorByteIdentical(t *testing.T) {
	spec := fault.Spec{Seed: 1}
	if err := spec.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if spec.Active() {
		t.Fatal("spec unexpectedly active")
	}
	inj := fault.NewInjector(spec, 8)
	_, healthy := runSpmv(t, 8, Affinity, true, nil, false)
	_, inert := runSpmv(t, 8, Affinity, true, inj, false)
	if !bytes.Equal(reportJSON(t, healthy), reportJSON(t, inert)) {
		t.Fatal("inert injector changed the run")
	}
}

func TestFaultsDeterministicAndDegrading(t *testing.T) {
	spec := fault.Spec{Seed: 42, VictimClusters: 2, DegradedLinkPct: 0.3, Stragglers: 1}
	if err := spec.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	_, a := runSpmv(t, 8, Affinity, true, fault.NewInjector(spec, 8), false)
	_, b := runSpmv(t, 8, Affinity, true, fault.NewInjector(spec, 8), false)
	if !bytes.Equal(reportJSON(t, a), reportJSON(t, b)) {
		t.Fatal("same fault seed produced different runs")
	}
	_, healthy := runSpmv(t, 8, Affinity, true, nil, false)
	if a.ExecTime <= healthy.ExecTime {
		t.Fatalf("faults did not degrade the run: faulted=%g healthy=%g",
			a.ExecTime, healthy.ExecTime)
	}
}

func TestAccountingSane(t *testing.T) {
	for _, level := range []LocalityLevel{NoAffinity, Affinity} {
		_, r := runSpmv(t, 8, level, true, nil, false)
		if bad := r.OverBusy(); len(bad) != 0 {
			t.Fatalf("level %v: over-busy locales %v", level, bad)
		}
		if r.TaskCount == 0 || r.RemoteGets == 0 {
			t.Fatalf("level %v: no work recorded: %+v", level, r)
		}
	}
	// Affinity runs every task at its locality object's home.
	_, r := runSpmv(t, 8, Affinity, true, nil, false)
	if r.LocalityPct() != 100 {
		t.Fatalf("affinity scheduling off target: %.1f%%", r.LocalityPct())
	}
}

func TestSingleLocaleNoMessages(t *testing.T) {
	_, r := runSpmv(t, 1, Affinity, true, nil, false)
	if r.MsgCount != 0 || r.RemoteGets != 0 || r.RemotePuts != 0 {
		t.Fatalf("single locale communicated: %+v", r)
	}
}
