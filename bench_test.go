package repro

// One benchmark per table and figure in the paper's evaluation
// section, plus the §5.x studies and the design-choice ablations.
// Each benchmark regenerates its artifact end to end at the small
// scale (go test -bench=. -benchmem); use cmd/jadebench -scale paper
// for paper-sized runs.

import (
	"testing"

	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

// Tables 1 and 6: serial and stripped execution times.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// Tables 2–5: execution times on DASH.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// Tables 7–10: execution times on the iPSC/860.
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B)  { benchExperiment(b, "table8") }
func BenchmarkTable9(b *testing.B)  { benchExperiment(b, "table9") }
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10") }

// Tables 11–14: adaptive broadcast on/off.
func BenchmarkTable11(b *testing.B) { benchExperiment(b, "table11") }
func BenchmarkTable12(b *testing.B) { benchExperiment(b, "table12") }
func BenchmarkTable13(b *testing.B) { benchExperiment(b, "table13") }
func BenchmarkTable14(b *testing.B) { benchExperiment(b, "table14") }

// Figures 2–5: task locality percentage on DASH.
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// Figures 6–9: total task execution time on DASH.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// Figures 10–11: task management percentage on DASH.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// Figures 12–15: task locality percentage on the iPSC/860.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// Figures 16–19: communication to computation ratio on the iPSC/860.
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B) { benchExperiment(b, "fig19") }

// Figures 20–21: task management percentage on the iPSC/860.
func BenchmarkFig20(b *testing.B) { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B) { benchExperiment(b, "fig21") }

// §5.1 replication, §5.4 latency hiding, §5.5 concurrent fetch.
func BenchmarkSec51(b *testing.B) { benchExperiment(b, "sec5.1") }
func BenchmarkSec54(b *testing.B) { benchExperiment(b, "sec5.4") }
func BenchmarkSec55(b *testing.B) { benchExperiment(b, "sec5.5") }

// Design-choice ablations (DESIGN.md §6).
func BenchmarkAblationSteal(b *testing.B)          { benchExperiment(b, "ablation-steal") }
func BenchmarkAblationLocalityPolicy(b *testing.B) { benchExperiment(b, "ablation-locality-policy") }
func BenchmarkAblationSticky(b *testing.B)         { benchExperiment(b, "ablation-sticky") }

func BenchmarkAblationOrdering(b *testing.B) { benchExperiment(b, "ablation-ordering") }
func BenchmarkExtensionUpdate(b *testing.B)  { benchExperiment(b, "extension-update") }

func BenchmarkExtensionPortability(b *testing.B) { benchExperiment(b, "extension-portability") }

func BenchmarkAblationPanels(b *testing.B) { benchExperiment(b, "ablation-panels") }
func BenchmarkUtilization(b *testing.B)    { benchExperiment(b, "utilization") }

// sweepSpecs is a front-end-dominated sweep: every app on both primary
// machines at every locality level it supports, work-free, so run time
// is dominated by building the task graph rather than simulating work.
// This is the shape of the paper's task-management figures (10/11/20/21).
func sweepSpecs(b *testing.B) []experiments.RunSpec {
	b.Helper()
	var specs []experiments.RunSpec
	for _, app := range []string{"water", "string", "ocean", "cholesky"} {
		for _, machine := range []string{"dash", "ipsc"} {
			for _, level := range []string{"none", "locality", "placement"} {
				s := experiments.RunSpec{App: app, Machine: machine, Level: level, WorkFree: true}
				if c := s; c.Canonicalize() != nil {
					continue // app has no explicit placement
				}
				specs = append(specs, s)
			}
		}
	}
	return specs
}

func benchSweep(b *testing.B, cache bool) {
	specs := sweepSpecs(b)
	experiments.SetGraphCache(cache)
	// Pin the classic per-run replay so Replay/Direct keep measuring
	// the pre-batching paths; Batched below measures the plan path.
	experiments.SetBatchReplay(false)
	defer func() {
		experiments.SetGraphCache(true)
		experiments.SetBatchReplay(true)
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := s.Execute(experiments.Small); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Graph capture & replay: the same work-free sweep with the task-graph
// cache on (each app front-end built once, then replayed) vs off
// (front-ends rebuilt every run). Output is byte-identical either way;
// the gap is the front-end cost the cache removes.
func BenchmarkSweepGraphReplay(b *testing.B) { benchSweep(b, true) }
func BenchmarkSweepGraphDirect(b *testing.B) { benchSweep(b, false) }

// Batched replay: the same work-free sweep through ExecuteRuns, which
// groups the cells sharing a captured graph into VariantSets — one
// op-stream pass over the shared replay plan drives every machine
// variant in lockstep. Run serially (workers=1) so the gap vs
// SweepGraphReplay is algorithmic, not parallelism.
func BenchmarkSweepGraphBatched(b *testing.B) {
	specs := sweepSpecs(b)
	runner := experiments.NewRunner(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, err := runner.ExecuteRuns(specs, experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if len(runs) != len(specs) {
			b.Fatalf("got %d runs for %d specs", len(runs), len(specs))
		}
	}
}

// The irregular SpMV workload on the PGAS machine, end to end, with
// the remote-get coalescing layer off (every gather element is its own
// message) and on (same-home gathers batched). The pair bounds both
// the simulator's cost on an irregular access pattern and the event
// count the aggregation layer removes.
func benchPgasSpmv(b *testing.B, aggregation bool) {
	spec := experiments.RunSpec{App: "spmv", Machine: "pgas", Aggregation: &aggregation}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := spec.Execute(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if r.TaskCount == 0 {
			b.Fatal("empty SpMV run")
		}
	}
}

func BenchmarkPgasSpMV(b *testing.B)        { benchPgasSpmv(b, false) }
func BenchmarkPgasAggregation(b *testing.B) { benchPgasSpmv(b, true) }

// The granularity study end to end: the synthetic task-size sweep
// across both machines with fusion and coalescing in every combination
// (ROADMAP item 2).
func BenchmarkGranularitySweep(b *testing.B) { benchExperiment(b, "granularity-sweep") }

// The task-fusion pass on the one paper app with fusable chains:
// Cholesky work-free on the iPSC, pass off vs on. The pair bounds what
// the fuse-then-replay path costs relative to plain replay.
func benchFusion(b *testing.B, fusion bool) {
	spec := experiments.RunSpec{App: "cholesky", Machine: "ipsc", WorkFree: true, Fusion: fusion}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := spec.Execute(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if r.TaskCount == 0 {
			b.Fatal("empty Cholesky run")
		}
	}
}

func BenchmarkFusionOff(b *testing.B) { benchFusion(b, false) }
func BenchmarkFusionOn(b *testing.B)  { benchFusion(b, true) }
