#!/bin/sh
# ci.sh — the repository's tier-1 gate plus an observability smoke
# test. Run from the repo root; exits non-zero on the first failure.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l . 2>/dev/null)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== jadebench -json smoke =="
# The emitted document must parse and carry the jadebench/v1 keys;
# jsoncheck avoids a jq/python dependency.
go run ./cmd/jadebench -experiment table4 -scale small -json |
    go run ./internal/tools/jsoncheck schema scale experiments runs

echo "CI OK"
