#!/bin/sh
# ci.sh — the repository's tier-1 gate plus an observability smoke
# test. Run from the repo root; exits non-zero on the first failure.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l . 2>/dev/null)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
# The packages with real goroutine concurrency: the native machine,
# the runtime that drives it, and the jaded server/queue/cache.
go test -race ./internal/native ./internal/jade ./internal/serve

echo "== jadebench -json smoke =="
# The emitted document must parse and carry the jadebench/v1 keys;
# jsoncheck avoids a jq/python dependency.
go run ./cmd/jadebench -experiment table4 -scale small -json |
    go run ./internal/tools/jsoncheck schema scale experiments runs

echo "== jaded smoke =="
# Start the server on an ephemeral port, submit the same small sync
# job twice, and check the second response is served from the cache.
tmp=$(mktemp -d)
jaded_pid=""
cleanup() {
    [ -n "$jaded_pid" ] && kill "$jaded_pid" 2>/dev/null || true
    [ -n "$jaded_pid" ] && wait "$jaded_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/jaded" ./cmd/jaded
go build -o "$tmp/jsoncheck" ./internal/tools/jsoncheck
"$tmp/jaded" -addr 127.0.0.1:0 -workers 1 >"$tmp/jaded.log" 2>&1 &
jaded_pid=$!

# Scrape the chosen address from the startup line.
addr=""
i=0
while [ $i -lt 50 ]; do
    addr=$(sed -n 's#^jaded: listening on http://##p' "$tmp/jaded.log")
    [ -n "$addr" ] && break
    kill -0 "$jaded_pid" 2>/dev/null || { cat "$tmp/jaded.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "jaded: never reported an address" >&2; exit 1; }

curl -fsS "http://$addr/healthz" | "$tmp/jsoncheck" status uptime_sec
curl -fsS "http://$addr/v1/experiments" | "$tmp/jsoncheck" schema count experiments.0.id

spec='{"schema":"jade-job/v1","experiments":["table4"],"scale":"small"}'
curl -fsS -X POST -d "$spec" "http://$addr/v1/jobs?sync=1" >"$tmp/first.json"
"$tmp/jsoncheck" schema status spec_hash result.schema result.experiments.0.id <"$tmp/first.json"
curl -fsS -X POST -d "$spec" "http://$addr/v1/jobs?sync=1" >"$tmp/second.json"
"$tmp/jsoncheck" schema status spec_hash cache_hit result.schema <"$tmp/second.json"
grep -q '"cache_hit": true' "$tmp/second.json" ||
    { echo "jaded: repeat submission was not a cache hit" >&2; exit 1; }

curl -fsS "http://$addr/metricz" |
    "$tmp/jsoncheck" schema cache_hits queue_depth experiment_latency_sec.table4

echo "CI OK"
