#!/bin/sh
# ci.sh — the repository's tier-1 gate plus an observability smoke
# test. Run from the repo root; exits non-zero on the first failure.
#
#   ./ci.sh         tier-1 gate: gofmt, vet, build, test, race, smokes
#   ./ci.sh bench   benchmark trajectory: run the tier-1 benchmarks,
#                   write BENCH_<commit>.json (jade-bench/v1), and fail
#                   if any benchmark regressed >20% vs BENCH_baseline.json
set -eu

if [ "${1:-}" = "bench" ]; then
    commit=$(git rev-parse --short HEAD)
    out="BENCH_${commit}.json"
    echo "== bench (writing $out) =="
    baseline_args=""
    if [ -f BENCH_baseline.json ]; then
        baseline_args="-baseline BENCH_baseline.json -tolerance 0.20"
    else
        echo "bench: no BENCH_baseline.json, recording only (no gate)" >&2
    fi
    # The tier-1 benchmark set: the event engine and processor hot
    # paths, the paper's table experiments end to end, and the sweep
    # with and without graph replay (the cached path must stay well
    # ahead of the direct one). -benchtime is kept short; the 20% gate
    # absorbs the extra noise.
    {
        go test -run '^$' -bench '^Benchmark(Engine|Processor)' \
            -benchmem -benchtime 0.2s ./internal/sim
        go test -run '^$' -bench '^BenchmarkTable([1-9]|1[0-4])$' \
            -benchmem -benchtime 0.2s .
        # The PGAS pair bounds the simulator's cost on the irregular
        # SpMV gather and the event count aggregation removes.
        go test -run '^$' -bench '^BenchmarkPgas(SpMV|Aggregation)$' \
            -benchmem -benchtime 0.2s .
        # The sweep pair backs a ratio claim (replay ≈ 2x direct), so
        # it gets a longer benchtime than the per-table gates.
        go test -run '^$' -bench '^BenchmarkSweepGraph(Replay|Direct)$' \
            -benchmem -benchtime 1s .
        # The batched sweep backs the headline batching claim (one
        # op-stream pass for all variants, ≥3x vs sequential replay and
        # ≥2x fewer allocs); it is fast, so a longer benchtime buys
        # stability without slowing the gate.
        go test -run '^$' -bench '^BenchmarkSweepGraphBatched$' \
            -benchmem -benchtime 2s .
        # The granularity pass: the task-size sweep end to end and the
        # fusion toggle pair (fused replay must stay close to plain
        # replay — the pass itself is a one-time op-stream rewrite).
        go test -run '^$' -bench '^Benchmark(GranularitySweep|Fusion(On|Off))$' \
            -benchmem -benchtime 0.2s .
        # The serving pair backs the observability-overhead claim:
        # spans + logging + SLO tracking on (observed) must track the
        # bare serving path.
        go test -run '^$' -bench '^BenchmarkServeJob$' \
            -benchmem -benchtime 1s ./internal/serve
    } | go run ./internal/tools/benchjson -commit "$commit" -o "$out" $baseline_args
    echo "bench OK: $out"
    exit 0
fi

echo "== gofmt =="
unformatted=$(gofmt -l . 2>/dev/null)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
# The packages with real goroutine concurrency: the native machine,
# the runtime that drives it, the jaded server/queue/cache (including
# the retry/breaker paths), the parallel experiment fan-out, the
# graph cache shared by concurrent runs, and the fault injector. The
# pgas machine and the spmv app ride along: both run inside the
# parallel fan-out, so their determinism must hold under -race too.
# The batched-replay byte-identity tests (graph.TestVariantSet* and
# experiments.TestExecuteRunsByteIdentical*) live in jade/graph and
# experiments, so the VariantSet lockstep pass is exercised under
# -race here as well. The routing tier (hedged attempts racing each
# other, health transitions under concurrent requests) and the load
# generator's worker pool join the set.
go test -race ./internal/native ./internal/jade ./internal/jade/graph ./internal/serve ./internal/experiments ./internal/fault ./internal/fuse ./internal/pgas ./internal/apps/spmv ./internal/router ./internal/load

echo "== jadebench -json smoke =="
# The emitted document must parse and carry the jadebench/v1 keys;
# jsoncheck avoids a jq/python dependency.
go run ./cmd/jadebench -experiment table4 -scale small -json |
    go run ./internal/tools/jsoncheck schema scale experiments runs

echo "== jadebench pgas smoke =="
# The three-machine comparison document must parse and carry the
# jade-pgas/v1 keys: the app × machine grid, the SpMV aggregation
# study, and the which-optimizations-transfer table.
go run ./cmd/jadebench -pgas-report -scale small |
    go run ./internal/tools/jsoncheck schema scale procs cells.0.app \
        spmv_aggregation.msg_count_on spmv_aggregation.neutral_apps.0 \
        transfers.0.optimization

echo "== jadebench graph-cache smoke =="
# Replaying cached task graphs — batched or sequential — must be
# invisible in the output: the same experiment with the defaults
# (cache + batched replay), with batching off, and with the cache off
# entirely must produce byte-identical reports.
gtmp=$(mktemp -d)
go run ./cmd/jadebench -experiment fig10 -scale small >"$gtmp/batched.txt"
go run ./cmd/jadebench -experiment fig10 -scale small -batch-replay=false >"$gtmp/sequential.txt"
go run ./cmd/jadebench -experiment fig10 -scale small -graph-cache=false >"$gtmp/direct.txt"
cmp "$gtmp/batched.txt" "$gtmp/sequential.txt" ||
    { echo "jadebench: batched replay changed the output" >&2; rm -rf "$gtmp"; exit 1; }
cmp "$gtmp/batched.txt" "$gtmp/direct.txt" ||
    { echo "jadebench: graph replay changed the output" >&2; rm -rf "$gtmp"; exit 1; }
rm -rf "$gtmp"

echo "== jadebench granularity smoke =="
# The task-size sweep document must parse and carry the
# jade-granularity/v1 keys; the semantic halves of the acceptance bar
# (fusion on sends fewer messages at the finest size; the pass moves
# the crossover strictly left) are pinned by the targeted tests.
go run ./cmd/jadebench -granularity-report -scale small |
    go run ./internal/tools/jsoncheck schema scale procs task_sizes_sec.0 \
        cells.0.machine cells.0.msg_count cells.0.exec_time_sec \
        crossovers.0.machine crossovers.0.crossover_work_sec
go test -run '^TestGranularity(FinestSizeMessageCut|PassMovesCrossover)$' ./internal/experiments

echo "== jaded smoke =="
# Start the server on an ephemeral port, submit the same small sync
# job twice, and check the second response is served from the cache.
tmp=$(mktemp -d)
jaded_pid=""
router_pid=""
cleanup() {
    [ -n "$jaded_pid" ] && kill "$jaded_pid" 2>/dev/null || true
    [ -n "$jaded_pid" ] && wait "$jaded_pid" 2>/dev/null || true
    [ -n "$router_pid" ] && kill "$router_pid" 2>/dev/null || true
    [ -n "$router_pid" ] && wait "$router_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/jaded" ./cmd/jaded
go build -o "$tmp/jsoncheck" ./internal/tools/jsoncheck
go build -o "$tmp/promcheck" ./internal/tools/promcheck
# The observability plane is on for the whole smoke: structured JSON
# logs on stderr, span capture, and pprof.
"$tmp/jaded" -addr 127.0.0.1:0 -workers 1 \
    -log-level debug -log-format json -spans -pprof \
    >"$tmp/jaded.log" 2>"$tmp/jaded.stderr" &
jaded_pid=$!

# Scrape the chosen address from the startup line.
addr=""
i=0
while [ $i -lt 50 ]; do
    addr=$(sed -n 's#^jaded: listening on http://##p' "$tmp/jaded.log")
    [ -n "$addr" ] && break
    kill -0 "$jaded_pid" 2>/dev/null || { cat "$tmp/jaded.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "jaded: never reported an address" >&2; exit 1; }

curl -fsS "http://$addr/healthz" | "$tmp/jsoncheck" status uptime_sec
curl -fsS "http://$addr/v1/experiments" | "$tmp/jsoncheck" schema count experiments.0.id

spec='{"schema":"jade-job/v1","experiments":["table4"],"scale":"small"}'
curl -fsS -X POST -d "$spec" "http://$addr/v1/jobs?sync=1" >"$tmp/first.json"
"$tmp/jsoncheck" schema status spec_hash result.schema result.experiments.0.id <"$tmp/first.json"
curl -fsS -X POST -d "$spec" "http://$addr/v1/jobs?sync=1" >"$tmp/second.json"
"$tmp/jsoncheck" schema status spec_hash cache_hit result.schema <"$tmp/second.json"
grep -q '"cache_hit": true' "$tmp/second.json" ||
    { echo "jaded: repeat submission was not a cache hit" >&2; exit 1; }

curl -fsS "http://$addr/metricz" |
    "$tmp/jsoncheck" schema cache_hits queue_depth experiment_latency_sec.table4

echo "== jaded observability smoke =="
# A caller-supplied trace ID must round-trip: echoed in the response
# header, stamped into the job's jade-span/v1 trace, and correlated in
# the structured access log.
trace_id="ci-trace-0001"
curl -fsS -D "$tmp/trace.hdr" -H "X-Jade-Trace: $trace_id" \
    -X POST -d '{"schema":"jade-job/v1","experiments":["fig10"],"scale":"small"}' \
    "http://$addr/v1/jobs?sync=1" >"$tmp/traced.json"
grep -qi "^X-Jade-Trace: $trace_id" "$tmp/trace.hdr" ||
    { echo "jaded: trace ID not echoed in the response header" >&2; cat "$tmp/trace.hdr" >&2; exit 1; }
grep -q "\"trace_id\": \"$trace_id\"" "$tmp/traced.json" ||
    { echo "jaded: trace ID missing from the status document" >&2; exit 1; }
job_id=$(sed -n 's/^  "id": "\(job-[0-9]*\)",$/\1/p' "$tmp/traced.json")
[ -n "$job_id" ] || { echo "jaded: no job id in the traced response" >&2; exit 1; }
curl -fsS "http://$addr/v1/jobs/$job_id/trace" >"$tmp/span.json"
"$tmp/jsoncheck" schema trace_id job_id root.name root.children.0.name <"$tmp/span.json"
grep -q "\"trace_id\": \"$trace_id\"" "$tmp/span.json" ||
    { echo "jaded: span doc carries the wrong trace ID" >&2; exit 1; }
for phase in queue_wait execute finish; do
    grep -q "\"name\": \"$phase\"" "$tmp/span.json" ||
        { echo "jaded: span doc missing phase $phase" >&2; cat "$tmp/span.json" >&2; exit 1; }
done
curl -fsS "http://$addr/v1/jobs/$job_id/trace?format=perfetto" | grep -q '"traceEvents"' ||
    { echo "jaded: perfetto trace export failed" >&2; exit 1; }
grep -q "\"trace_id\":\"$trace_id\"" "$tmp/jaded.stderr" ||
    { echo "jaded: access log does not correlate the trace ID" >&2; cat "$tmp/jaded.stderr" >&2; exit 1; }

# The Prometheus rendering of /metricz must be valid 0.0.4 text and
# carry the serving families.
curl -fsS "http://$addr/metricz?format=prom" |
    "$tmp/promcheck" jaded_jobs_accepted_total jaded_jobs_completed_total \
        jaded_result_cache_hits_total jaded_queue_depth jaded_workers \
        jaded_job_latency_seconds

# pprof answers when enabled.
curl -fsS "http://$addr/debug/pprof/cmdline" >/dev/null ||
    { echo "jaded: pprof endpoint missing" >&2; exit 1; }

echo "== jaded chaos smoke =="
# A job whose spec injects a panic must fail cleanly (panic isolation)
# while the server stays healthy and keeps serving subsequent jobs.
chaos='{"schema":"jade-job/v1","runs":[{"app":"water","machine":"ipsc","fault":{"seed":1,"panic":true}}],"scale":"small"}'
curl -sS -X POST -d "$chaos" "http://$addr/v1/jobs?sync=1" >"$tmp/chaos.json"
grep -q '"status": "failed"' "$tmp/chaos.json" ||
    { echo "jaded: injected panic did not fail the job" >&2; cat "$tmp/chaos.json" >&2; exit 1; }
grep -q 'panicked' "$tmp/chaos.json" ||
    { echo "jaded: failed job does not report the panic" >&2; cat "$tmp/chaos.json" >&2; exit 1; }
curl -fsS "http://$addr/healthz" | "$tmp/jsoncheck" status uptime_sec
curl -fsS -X POST -d "$spec" "http://$addr/v1/jobs?sync=1" >"$tmp/postchaos.json"
grep -q '"status": "done"' "$tmp/postchaos.json" ||
    { echo "jaded: server unhealthy after injected panic" >&2; cat "$tmp/postchaos.json" >&2; exit 1; }

echo "== jaderouter smoke =="
# The routing tier in front of three embedded jaded backends: a routed
# submission must name its serving backend, echo the caller's trace ID,
# and the router must export the jaderouter_* metric families.
go build -o "$tmp/jaderouter" ./cmd/jaderouter
"$tmp/jaderouter" -addr 127.0.0.1:0 -embed 3 -workers 1 \
    >"$tmp/router.log" 2>"$tmp/router.stderr" &
router_pid=$!

raddr=""
i=0
while [ $i -lt 50 ]; do
    raddr=$(sed -n 's#^jaderouter: listening on http://\([^ ]*\).*#\1#p' "$tmp/router.log")
    [ -n "$raddr" ] && break
    kill -0 "$router_pid" 2>/dev/null || { cat "$tmp/router.log" "$tmp/router.stderr" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$raddr" ] || { echo "jaderouter: never reported an address" >&2; exit 1; }

curl -fsS "http://$raddr/healthz" | "$tmp/jsoncheck" schema status backends
curl -fsS "http://$raddr/v1/experiments" | "$tmp/jsoncheck" schema count experiments.0.id
curl -fsS -D "$tmp/routed.hdr" -X POST -d "$spec" \
    "http://$raddr/v1/jobs?sync=1" >"$tmp/routed.json"
"$tmp/jsoncheck" schema status spec_hash result.schema <"$tmp/routed.json"
grep -qi '^X-Jade-Backend: jaded-' "$tmp/routed.hdr" ||
    { echo "jaderouter: response does not name its backend" >&2; cat "$tmp/routed.hdr" >&2; exit 1; }
grep -qi '^X-Jade-Trace: ' "$tmp/routed.hdr" ||
    { echo "jaderouter: response carried no trace ID" >&2; cat "$tmp/routed.hdr" >&2; exit 1; }
curl -fsS "http://$raddr/metricz" |
    "$tmp/jsoncheck" schema counters.routed counters.failovers backends
curl -fsS "http://$raddr/metricz?format=prom" |
    "$tmp/promcheck" jaderouter_routed_total jaderouter_failovers_total \
        jaderouter_ejections_total jaderouter_stale_served_total \
        jaderouter_backend_state jaderouter_uptime_seconds
kill "$router_pid" 2>/dev/null || true
wait "$router_pid" 2>/dev/null || true
router_pid=""

echo "== jadeload chaos smoke =="
# The availability claim, pinned: replay a seeded Zipf workload against
# a 1-node baseline and a 3-node routed cluster, hanging the hottest
# key's primary mid-run in the cluster. Hedges must win against the
# hung node, at least one request must fail over to a replica, and no
# request may fail — cached keys keep answering (stale at worst) with
# zero non-stale errors. The schedule is a pure function of the seed,
# so these counters are assertions, not observations.
go build -o "$tmp/jadeload" ./cmd/jadeload
"$tmp/jadeload" -backends 3 -requests 120 -concurrency 8 \
    -experiments "table1,table2,table3,table5" -kill hang@40 -seed 42 \
    -probe-interval 50ms >"$tmp/load.json"
"$tmp/jsoncheck" schema workload.seed workload.kills.0.mode \
    topologies.0.backends topologies.0.counts.total topologies.0.latency.p95_sec \
    topologies.1.killed.0 topologies.1.router.hedge_wins topologies.1.health \
    <"$tmp/load.json"
if grep -q '"failed": [1-9]' "$tmp/load.json"; then
    echo "jadeload: requests failed under the hang" >&2; cat "$tmp/load.json" >&2; exit 1
fi
grep -q '"hedge_wins": [1-9]' "$tmp/load.json" ||
    { echo "jadeload: no hedge wins against the hung primary" >&2; cat "$tmp/load.json" >&2; exit 1; }
grep -q '"failovers": [1-9]' "$tmp/load.json" ||
    { echo "jadeload: no failovers recorded under the hang" >&2; cat "$tmp/load.json" >&2; exit 1; }

# Same workload with a hard-down kill and fast probes: the dead node
# must be ejected by the health checker, and still nothing may fail.
"$tmp/jadeload" -backends 3 -requests 120 -concurrency 8 \
    -experiments "table1,table2,table3,table5" -kill down@60 -seed 42 \
    -probe-interval 25ms -probe-timeout 20ms -single-only >"$tmp/down.json"
"$tmp/jsoncheck" schema topologies.0.router.ejections <"$tmp/down.json"
if grep -q '"failed": [1-9]' "$tmp/down.json"; then
    echo "jadeload: requests failed under the down kill" >&2; cat "$tmp/down.json" >&2; exit 1
fi
grep -q '"ejections": [1-9]' "$tmp/down.json" ||
    { echo "jadeload: dead backend was never ejected" >&2; cat "$tmp/down.json" >&2; exit 1; }
grep -q '"failovers": [1-9]' "$tmp/down.json" ||
    { echo "jadeload: no failovers recorded after the ejection" >&2; cat "$tmp/down.json" >&2; exit 1; }

echo "CI OK"
