// Cholesky example: factor a sparse SPD stiffness matrix with the
// paper's Panel Cholesky task decomposition on the native goroutine
// platform, then solve a linear system with the factor and report the
// residual. The internal/external update tasks and their access
// declarations are exactly the ones the experiments use.
//
// Run with: go run ./examples/cholesky [-grid 10] [-panel 16]
package main

import (
	"flag"
	"fmt"
	"math"
	"runtime"

	"repro/internal/apps/cholesky"
	"repro/internal/jade"
	"repro/internal/native"
	"repro/internal/sparse"
)

func main() {
	grid := flag.Int("grid", 10, "stiffness grid dimension (n = grid^3)")
	panel := flag.Int("panel", 16, "panel width in columns")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines")
	flag.Parse()

	cfg := cholesky.Config{NX: *grid, NY: *grid, NZ: *grid,
		PanelWidth: *panel, FlopCostSec: 280e-9}
	w := cholesky.NewWorkload(cfg)
	fmt.Printf("matrix: n=%d, nnz(A)=%d, nnz(L)=%d, %d panels, %d tasks\n",
		w.A.N, w.A.NNZ(), w.Sym.NNZL(), w.Sym.NumPanels(), cholesky.TaskCount(w))

	machine := native.New(*workers)
	defer machine.Close()
	rt := jade.New(machine, jade.Config{})
	out := cholesky.Run(rt, cfg, w)
	res := rt.Finish()
	fmt.Printf("factorized on %d workers in %.1f ms (diag sum %.6g)\n",
		res.Procs, res.ExecTime*1e3, out.DiagSum)

	if serial := cholesky.RunSerial(w); serial == out {
		fmt.Println("parallel factor is bit-identical to the serial factorization")
	} else {
		fmt.Println("WARNING: parallel factor diverged from serial factorization")
	}

	// Solve A·x = b for b = A·ones and report the residual. The solve
	// needs the numeric factor, so rebuild it serially (Run consumed
	// its own copy internally).
	f := sparse.NewFactor(w.A, w.Sym)
	if err := f.FactorSerial(); err != nil {
		panic(err)
	}
	n := w.A.N
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		rows, vals := w.A.Col(j)
		for k, i := range rows {
			b[i] += vals[k]
			if i != j {
				b[j] += vals[k]
			}
		}
	}
	x := f.Solve(b)
	worst := 0.0
	for _, xi := range x {
		if d := math.Abs(xi - 1); d > worst {
			worst = d
		}
	}
	fmt.Printf("solve residual: max |x_i - 1| = %.3g\n", worst)
}
