// Ocean example: the paper's eddy-current stencil solver running on
// the native goroutine platform, with the same Jade decomposition
// used in the experiments (interior column blocks plus two-column
// boundary blocks). Demonstrates that the access declarations alone
// pipeline the iterations: neighbor tasks serialize through the shared
// boundary blocks while distant blocks run concurrently.
//
// Run with: go run ./examples/ocean [-n 128] [-iters 200] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/internal/apps/ocean"
	"repro/internal/jade"
	"repro/internal/native"
)

func main() {
	n := flag.Int("n", 128, "grid dimension")
	iters := flag.Int("iters", 200, "relaxation sweeps")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines")
	flag.Parse()

	cfg := ocean.Small()
	cfg.N = *n
	cfg.Iterations = *iters

	serial := ocean.RunSerialEquivalent(cfg, *workers)

	machine := native.New(*workers)
	defer machine.Close()
	rt := jade.New(machine, jade.Config{})
	out := ocean.Run(rt, cfg)
	res := rt.Finish()

	fmt.Printf("grid %dx%d, %d sweeps, %d tasks on %d workers\n",
		*n, *n, *iters, res.TaskCount, res.Procs)
	fmt.Printf("residual: %.6g (serial reference %.6g)\n", out.Residual, serial.Residual)
	if out == serial {
		fmt.Println("parallel result is bit-identical to the serial execution")
	} else {
		fmt.Println("WARNING: parallel result diverged from serial execution")
	}
	fmt.Printf("wall time: %.1f ms\n", res.ExecTime*1e3)
}
