// Pipeline example: the paper's advanced Jade constructs (§2) —
// tasks with multiple synchronization points. A producer task fills a
// sequence of buffers, releasing each buffer as soon as it is written
// (Jade's no_wr statement); consumer tasks start on buffer k while the
// producer is still filling buffer k+1. Compare with the single
// withonly version, where every consumer waits for the whole producer.
//
// Run with: go run ./examples/pipeline [-buffers 8] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"repro/internal/jade"
	"repro/internal/native"
)

func run(staged bool, buffers, workers, items int) (time.Duration, int64) {
	machine := native.New(workers)
	defer machine.Close()
	rt := jade.New(machine, jade.Config{})

	data := make([][]int64, buffers)
	objs := make([]*jade.Object, buffers)
	sums := make([]int64, buffers)
	sumObjs := make([]*jade.Object, buffers)
	for b := 0; b < buffers; b++ {
		data[b] = make([]int64, items)
		objs[b] = rt.Alloc(fmt.Sprintf("buf%d", b), items*8, data[b])
		sumObjs[b] = rt.Alloc(fmt.Sprintf("sum%d", b), 8, &sums[b])
	}

	fill := func(b int) {
		for i := range data[b] {
			data[b][i] = int64(b*items + i)
		}
	}

	start := time.Now()
	if staged {
		// One producer task with a synchronization point per buffer.
		segs := make([]jade.Segment, buffers)
		for b := 0; b < buffers; b++ {
			b := b
			segs[b] = jade.Segment{
				Body:    func() { fill(b) },
				Release: []*jade.Object{objs[b]},
			}
		}
		rt.WithOnlyStaged(func(s *jade.Spec) {
			for _, o := range objs {
				s.Wr(o)
			}
		}, segs)
	} else {
		// Plain withonly: the producer holds every buffer to the end.
		rt.WithOnly(func(s *jade.Spec) {
			for _, o := range objs {
				s.Wr(o)
			}
		}, 0, func() {
			for b := 0; b < buffers; b++ {
				fill(b)
			}
		})
	}

	// Consumers: one per buffer, enabled as its buffer is released.
	for b := 0; b < buffers; b++ {
		b := b
		rt.WithOnly(func(s *jade.Spec) {
			s.Rd(objs[b])
			s.Wr(sumObjs[b])
		}, 0, func() {
			var s int64
			for _, v := range data[b] {
				s += v
			}
			sums[b] = s
		})
	}
	rt.Finish()
	var total int64
	for _, s := range sums {
		total += s
	}
	return time.Since(start), total
}

func main() {
	buffers := flag.Int("buffers", 8, "pipeline stages")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines")
	items := flag.Int("items", 1<<20, "items per buffer")
	flag.Parse()

	plainTime, plainSum := run(false, *buffers, *workers, *items)
	stagedTime, stagedSum := run(true, *buffers, *workers, *items)

	if plainSum != stagedSum {
		panic("pipeline produced different results")
	}
	fmt.Printf("%d buffers × %d items, %d workers (checksum %d)\n",
		*buffers, *items, *workers, plainSum)
	fmt.Printf("plain withonly (consumers wait for whole producer): %8.2f ms\n",
		float64(plainTime.Microseconds())/1000)
	fmt.Printf("staged task    (buffers released one at a time):    %8.2f ms\n",
		float64(stagedTime.Microseconds())/1000)
}
