// Machines example: the same Jade program executed on the two
// simulated 1995 machines — the DASH shared-memory model and the
// iPSC/860 message-passing model — printing the communication metrics
// side by side. This is the paper's central point made runnable: one
// portable program, two machines, machine-specific communication
// optimizations applied automatically by the implementation.
//
// Run with: go run ./examples/machines [-procs 16]
package main

import (
	"flag"
	"fmt"

	"repro/internal/apps/tomo"
	"repro/internal/dash"
	"repro/internal/ipsc"
	"repro/internal/jade"
	"repro/internal/metrics"
)

func main() {
	procs := flag.Int("procs", 16, "simulated processors")
	flag.Parse()

	cfg := tomo.Small()

	runDash := func() *metrics.Run {
		m := dash.New(dash.DefaultConfig(*procs, dash.Locality))
		rt := jade.New(m, jade.Config{})
		tomo.Run(rt, cfg)
		return rt.Finish()
	}
	runIpsc := func(broadcast bool) *metrics.Run {
		c := ipsc.DefaultConfig(*procs, ipsc.Locality)
		c.AdaptiveBroadcast = broadcast
		m := ipsc.New(c)
		rt := jade.New(m, jade.Config{})
		tomo.Run(rt, cfg)
		return rt.Finish()
	}

	d := runDash()
	i := runIpsc(true)
	inb := runIpsc(false)

	fmt.Printf("String (cross-well tomography) on %d simulated processors\n\n", *procs)
	fmt.Printf("%-34s %12s %12s\n", "", "DASH", "iPSC/860")
	fmt.Printf("%-34s %12.4f %12.4f\n", "execution time (s)", d.ExecTime, i.ExecTime)
	fmt.Printf("%-34s %11.1f%% %11.1f%%\n", "tasks on target processor", d.LocalityPct(), i.LocalityPct())
	fmt.Printf("%-34s %12.4f %12.4f\n", "task execution time (s)", d.TaskExecTotal, i.TaskExecTotal)
	fmt.Printf("%-34s %12s %12d\n", "object messages", "n/a", i.MsgCount)
	fmt.Printf("%-34s %12s %12d\n", "object bytes moved", "n/a", i.MsgBytes)
	fmt.Printf("%-34s %12d %12d\n", "remote bytes (cache model)", d.RemoteBytes, int64(0))
	fmt.Printf("%-34s %12s %12d\n", "adaptive broadcasts", "n/a", i.BroadcastCount)
	fmt.Printf("\nadaptive broadcast off on the iPSC/860: %.4f s (vs %.4f s on)\n",
		inb.ExecTime, i.ExecTime)
	fmt.Println("\nThe program text is identical on both machines; only the platform differs.")
}
