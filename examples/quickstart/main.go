// Quickstart: a minimal Jade program.
//
// The program sums a large vector in blocks. Each block task declares
// that it reads its block and read-writes its partial-sum cell; a
// final task declares it reads every partial and writes the total.
// The runtime extracts the parallelism from those declarations alone:
// the block tasks run concurrently on the native goroutine platform,
// and the final sum waits for all of them.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"runtime"

	"repro/internal/jade"
	"repro/internal/native"
)

func main() {
	const n = 1 << 22
	const blocks = 64

	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i%1000) / 1000
	}

	machine := native.New(runtime.NumCPU())
	defer machine.Close()
	rt := jade.New(machine, jade.Config{})

	// Shared objects: the vector blocks and one partial sum per block.
	blockObjs := make([]*jade.Object, blocks)
	partObjs := make([]*jade.Object, blocks)
	partials := make([]float64, blocks)
	for b := 0; b < blocks; b++ {
		lo, hi := b*n/blocks, (b+1)*n/blocks
		blockObjs[b] = rt.Alloc(fmt.Sprintf("block%d", b), (hi-lo)*8, data[lo:hi])
		partObjs[b] = rt.Alloc(fmt.Sprintf("partial%d", b), 8, &partials[b])
	}
	totalObj := rt.Alloc("total", 8, new(float64))

	// One task per block: withonly { rd(block); wr(partial) } do ...
	for b := 0; b < blocks; b++ {
		b := b
		lo, hi := b*n/blocks, (b+1)*n/blocks
		rt.WithOnly(func(s *jade.Spec) {
			s.Rd(blockObjs[b])
			s.Wr(partObjs[b])
		}, 0, func() {
			sum := 0.0
			for _, v := range data[lo:hi] {
				sum += v
			}
			partials[b] = sum
		})
	}

	// The reduction task reads every partial; the runtime runs it only
	// after all block tasks complete.
	total := totalObj.Data.(*float64)
	rt.WithOnly(func(s *jade.Spec) {
		for b := 0; b < blocks; b++ {
			s.Rd(partObjs[b])
		}
		s.Wr(totalObj)
	}, 0, func() {
		for _, p := range partials {
			*total += p
		}
	})

	res := rt.Finish()
	fmt.Printf("sum of %d elements over %d tasks on %d workers: %.1f\n",
		n, res.TaskCount, res.Procs, *total)
	fmt.Printf("wall time: %.1f ms\n", res.ExecTime*1e3)
}
